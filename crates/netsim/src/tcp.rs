//! The TCP flow model.
//!
//! Bulk transfers are simulated at **RTT-round granularity** rather than per
//! packet: every round-trip time, a flow sends a window of packets, suffers
//! Bernoulli loss on each, and updates its congestion window the way TCP
//! Reno would (slow start doubling below `ssthresh`, additive increase
//! above, multiplicative decrease on a lossy round). This captures the three
//! effects the paper's results hinge on:
//!
//! 1. **Connection setup cost** — a new connection spends 1.5 RTT in the
//!    three-way handshake before the first payload byte, which penalises
//!    splicing schemes that create many small per-segment connections.
//! 2. **Slow start** — short transfers finish before the window opens, so
//!    small segments underutilise the path.
//! 3. **Loss-limited throughput** — with the paper's 5 % loss the window
//!    stays small (the Mathis `MSS/(RTT·√p)` regime), so a single flow
//!    cannot saturate a fat link and concurrent downloads genuinely help.
//!
//! Capacity sharing is approximated per round: a flow's send budget is
//! capped by the narrowest link of its path divided by the number of flows
//! currently crossing that link (max–min fairness at round granularity).

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;

use crate::id::{DirLinkId, FlowId, NodeId};
use crate::rng::binomial;
use crate::time::{SimDuration, SimTime};

/// Tunables of the TCP model.
///
/// The defaults follow modern TCP practice (MSS 1460, IW10 per RFC 6928).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Initial congestion window, in packets.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, in packets.
    pub initial_ssthresh: f64,
    /// RTT multiples consumed by connection establishment before the first
    /// data round (1.5 models the three-way handshake).
    pub handshake_rtts: f64,
    /// Multiplicative-decrease factor applied to the window on a lossy
    /// round (0.5 = classic Reno, 0.7 = CUBIC-like).
    pub loss_decrease_factor: f64,
    /// Congestion-avoidance growth per round is `1 + ca_growth_factor ×
    /// cwnd` packets: 0 gives Reno's additive increase, small positive
    /// values approximate CUBIC's faster reopening after a loss.
    pub ca_growth_factor: f64,
    /// Congestion window floor after a loss, in packets.
    pub min_cwnd: f64,
    /// Congestion window ceiling, in packets (receive-window stand-in).
    pub max_cwnd: f64,
    /// Fraction of a link's configured loss that applies even when the
    /// link is idle. Shaped links (like the paper's GENI RSpec links) drop
    /// mostly under load: the effective per-packet loss of a link is
    /// `loss × (floor + (1 − floor) × utilization)`.
    pub loss_utilization_floor: f64,
    /// Time constant of the link-utilization estimator, seconds.
    pub utilization_tau_secs: f64,
    /// Extra loss per unit of link *overload pressure* beyond the
    /// threshold. Pressure is `flows × min_cwnd × MSS / BDP`: when so many
    /// flows share a link that even their minimum windows approach the
    /// bandwidth-delay product, real TCP cannot back off any further and
    /// collapses into retransmission timeouts. This is what makes an
    /// oversized download pool counterproductive on a thin link (the
    /// paper's §VI-B).
    pub overload_loss_coeff: f64,
    /// Pressure level where the overload ramp starts (queues build before
    /// the hard limit).
    pub overload_pressure_threshold: f64,
    /// Ceiling on the overload-induced extra loss.
    pub overload_loss_max: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            initial_cwnd: 10.0,
            initial_ssthresh: 64.0,
            handshake_rtts: 1.5,
            loss_decrease_factor: 0.7,
            ca_growth_factor: 0.05,
            min_cwnd: 2.0,
            max_cwnd: 512.0,
            loss_utilization_floor: 0.25,
            utilization_tau_secs: 1.0,
            overload_loss_coeff: 0.9,
            overload_pressure_threshold: 0.6,
            overload_loss_max: 0.85,
        }
    }
}

/// Dynamic state of one flow.
#[derive(Debug)]
pub(crate) struct Flow {
    pub id: FlowId,
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Directed links crossed, in order.
    pub path: Vec<DirLinkId>,
    /// Round-trip time of the path (2 × one-way latency).
    pub rtt: SimDuration,
    /// Per-packet loss probability along the path.
    pub loss: f64,
    /// Total payload bytes to move.
    pub total: u64,
    /// Bytes delivered so far.
    pub delivered: u64,
    /// Congestion window, in packets.
    pub cwnd: f64,
    /// Slow-start threshold, in packets.
    pub ssthresh: f64,
    /// Application tag echoed in completion events.
    pub tag: u64,
    /// When the transfer was requested.
    pub started: SimTime,
}

/// What a round of the flow produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundOutcome {
    /// More rounds needed.
    InProgress,
    /// All bytes have been delivered.
    Completed,
}

impl Flow {
    /// Advances one RTT round given this round's fair-share rate and the
    /// effective per-packet loss (base path loss scaled by utilization).
    /// Returns the outcome and the wire bytes put on the path this round.
    pub fn advance_round(
        &mut self,
        cfg: &TcpConfig,
        fair_share_bps: f64,
        effective_loss: f64,
        rng: &mut StdRng,
    ) -> (RoundOutcome, u64) {
        // Fair-share budget for one RTT, in packets (at least one: TCP
        // always keeps a packet in flight).
        let budget_bytes = fair_share_bps / 8.0 * self.rtt.as_secs_f64();
        let budget_pkts = (budget_bytes / cfg.mss as f64).floor().max(1.0) as u64;
        let window_pkts = self.cwnd.floor().max(1.0) as u64;
        let remaining_pkts = (self.total - self.delivered).div_ceil(cfg.mss);
        let send = budget_pkts.min(window_pkts).min(remaining_pkts);

        let lost = binomial(rng, send, effective_loss);
        let arrived = send - lost;
        self.delivered = (self.delivered + arrived * cfg.mss).min(self.total);

        if lost > 0 {
            // One loss event per round: multiplicative decrease.
            self.ssthresh = (self.cwnd * cfg.loss_decrease_factor).max(cfg.min_cwnd);
            self.cwnd = self.ssthresh;
        } else if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd * 2.0).min(self.ssthresh).min(cfg.max_cwnd);
        } else {
            self.cwnd = (self.cwnd + 1.0 + cfg.ca_growth_factor * self.cwnd).min(cfg.max_cwnd);
        }

        let outcome = if self.delivered >= self.total {
            RoundOutcome::Completed
        } else {
            RoundOutcome::InProgress
        };
        (outcome, send * cfg.mss)
    }
}

/// Per-directed-link recent send-rate estimator: an exponentially decayed
/// impulse average, so steady sends of `r` bps read back as ≈ `r`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LinkUsage {
    rate_bps: f64,
    last_micros: u64,
}

impl LinkUsage {
    /// Accounts `bytes` put on the link at `now`.
    pub fn note(&mut self, now: SimTime, bytes: u64, tau_secs: f64) {
        self.rate_bps = self.rate_bps_at(now, tau_secs) + bytes as f64 * 8.0 / tau_secs;
        self.last_micros = now.as_micros();
    }

    /// The decayed rate estimate at `now`, bits per second.
    pub fn rate_bps_at(&self, now: SimTime, tau_secs: f64) -> f64 {
        let dt = now.as_micros().saturating_sub(self.last_micros) as f64 / 1e6;
        self.rate_bps * (-dt / tau_secs).exp()
    }
}

/// Book-keeping for all active flows and per-directed-link load counts.
#[derive(Debug, Default)]
pub(crate) struct FlowTable {
    flows: std::collections::HashMap<u64, Flow>,
    /// Number of active flows crossing each directed link.
    link_load: Vec<u32>,
    next_id: u64,
}

impl FlowTable {
    pub fn new(dir_link_count: usize) -> Self {
        FlowTable {
            flows: std::collections::HashMap::new(),
            link_load: vec![0; dir_link_count],
            next_id: 0,
        }
    }

    pub fn insert(&mut self, mut flow: Flow) -> FlowId {
        let id = FlowId(self.next_id);
        self.next_id += 1;
        flow.id = id;
        for dir in &flow.path {
            self.link_load[dir.index()] += 1;
        }
        self.flows.insert(id.0, flow);
        id
    }

    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut Flow> {
        self.flows.get_mut(&id.0)
    }

    pub fn get(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id.0)
    }

    /// Removes a flow, releasing its link load. Returns the flow if it was
    /// still active.
    pub fn remove(&mut self, id: FlowId) -> Option<Flow> {
        let flow = self.flows.remove(&id.0)?;
        for dir in &flow.path {
            debug_assert!(self.link_load[dir.index()] > 0);
            self.link_load[dir.index()] -= 1;
        }
        Some(flow)
    }

    /// Number of active flows crossing the given directed link.
    pub fn load(&self, dir: DirLinkId) -> u32 {
        self.link_load[dir.index()]
    }

    /// Ids of all flows that have `node` as an endpoint.
    pub fn flows_touching(&self, node: NodeId) -> Vec<FlowId> {
        let mut ids: Vec<FlowId> = self
            .flows
            .values()
            .filter(|f| f.src == node || f.dst == node)
            .map(|f| f.id)
            .collect();
        ids.sort_unstable(); // deterministic iteration order
        ids
    }

    pub fn active_count(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::LinkId;
    use rand::SeedableRng;

    fn test_flow(total: u64, loss: f64) -> Flow {
        Flow {
            id: FlowId(0),
            src: NodeId::from_index(0),
            dst: NodeId::from_index(1),
            path: vec![DirLinkId::new(LinkId(0), true)],
            rtt: SimDuration::from_millis(100),
            loss,
            total,
            delivered: 0,
            cwnd: 10.0,
            ssthresh: 64.0,
            tag: 0,
            started: SimTime::ZERO,
        }
    }

    #[test]
    fn lossless_flow_completes_and_grows_window() {
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut flow = test_flow(1_000_000, 0.0);
        let mut rounds = 0;
        while flow.advance_round(&cfg, 1e9, flow.loss, &mut rng).0 == RoundOutcome::InProgress {
            rounds += 1;
            assert!(rounds < 100, "flow did not complete");
        }
        // Slow start doubles 10 → 64 (ssthresh), then additive increase; a
        // 1 MB transfer at these windows takes a handful of rounds.
        assert!(rounds <= 12, "took {rounds} rounds");
        assert_eq!(flow.delivered, flow.total);
    }

    #[test]
    fn budget_caps_window() {
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut flow = test_flow(10_000_000, 0.0);
        // 128 kB/s fair share, 100 ms RTT → 12.8 kB ≈ 8 packets per round.
        let (_, sent) = flow.advance_round(&cfg, 128_000.0 * 8.0, 0.0, &mut rng);
        assert_eq!(flow.delivered, 8 * cfg.mss);
        assert_eq!(sent, 8 * cfg.mss);
    }

    #[test]
    fn lossy_rounds_shrink_window() {
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut flow = test_flow(100_000_000, 0.9);
        for _ in 0..50 {
            flow.advance_round(&cfg, 1e9, 0.9, &mut rng);
        }
        assert!(flow.cwnd <= 4.0, "window stayed at {}", flow.cwnd);
        assert!(flow.cwnd >= cfg.min_cwnd);
    }

    #[test]
    fn loss_limited_throughput_tracks_mathis() {
        // At p=5%, RTT=100ms, Mathis predicts ≈ MSS/RTT · sqrt(3/2p) ≈ 80 kB/s.
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        let mut flow = test_flow(u64::MAX / 2, 0.05);
        let rounds = 5_000;
        for _ in 0..rounds {
            flow.advance_round(&cfg, 1e12, 0.05, &mut rng);
        }
        let secs = rounds as f64 * flow.rtt.as_secs_f64();
        let goodput = flow.delivered as f64 / secs;
        assert!(
            (40_000.0..160_000.0).contains(&goodput),
            "goodput {goodput} B/s out of the loss-limited regime"
        );
    }

    #[test]
    fn flow_table_tracks_load() {
        let mut table = FlowTable::new(4);
        let f1 = table.insert(test_flow(100, 0.0));
        let f2 = table.insert(test_flow(100, 0.0));
        let dir = DirLinkId::new(LinkId(0), true);
        assert_eq!(table.load(dir), 2);
        assert_eq!(table.active_count(), 2);
        table.remove(f1).unwrap();
        assert_eq!(table.load(dir), 1);
        assert!(table.remove(f1).is_none());
        table.remove(f2).unwrap();
        assert_eq!(table.load(dir), 0);
    }

    #[test]
    fn flow_ids_are_unique_and_monotonic() {
        let mut table = FlowTable::new(4);
        let a = table.insert(test_flow(1, 0.0));
        let b = table.insert(test_flow(1, 0.0));
        table.remove(a).unwrap();
        let c = table.insert(test_flow(1, 0.0));
        assert!(a.raw() < b.raw() && b.raw() < c.raw());
    }

    #[test]
    fn flows_touching_finds_endpoints() {
        let mut table = FlowTable::new(4);
        let f = table.insert(test_flow(1, 0.0));
        assert_eq!(table.flows_touching(NodeId::from_index(0)), vec![f]);
        assert_eq!(table.flows_touching(NodeId::from_index(1)), vec![f]);
        assert!(table.flows_touching(NodeId::from_index(2)).is_empty());
    }
}
