//! The TCP flow model.
//!
//! Bulk transfers are simulated at **RTT-round granularity** rather than per
//! packet: every round-trip time, a flow sends a window of packets, suffers
//! Bernoulli loss on each, and updates its congestion window the way TCP
//! Reno would (slow start doubling below `ssthresh`, additive increase
//! above, multiplicative decrease on a lossy round). This captures the three
//! effects the paper's results hinge on:
//!
//! 1. **Connection setup cost** — a new connection spends 1.5 RTT in the
//!    three-way handshake before the first payload byte, which penalises
//!    splicing schemes that create many small per-segment connections.
//! 2. **Slow start** — short transfers finish before the window opens, so
//!    small segments underutilise the path.
//! 3. **Loss-limited throughput** — with the paper's 5 % loss the window
//!    stays small (the Mathis `MSS/(RTT·√p)` regime), so a single flow
//!    cannot saturate a fat link and concurrent downloads genuinely help.
//!
//! Capacity sharing is approximated per round: a flow's send budget is
//! capped by the narrowest link of its path divided by the number of flows
//! currently crossing that link (max–min fairness at round granularity).

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;

use crate::id::{DirLinkId, FlowId, NodeId};
use crate::rng::binomial;
use crate::time::{SimDuration, SimTime};

/// Which bulk-transfer model the simulator advances flows with.
///
/// * [`FlowModel::Rounds`] steps every flow once per RTT — faithful to the
///   paper's window dynamics (handshake, slow start, AIMD, Bernoulli loss)
///   but `O(flows × rounds)` events, which caps feasible swarm sizes.
/// * [`FlowModel::Fluid`] treats each flow as a constant-rate pipe: max–min
///   fair shares are recomputed only when the flow set changes and exactly
///   one completion event is scheduled per rate epoch — `O(flow-set
///   changes)` events, making 100×-larger swarms tractable. Loss and
///   window limits are folded in as a Mathis-style rate ceiling so
///   aggregate metrics stay close to the round model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FlowModel {
    /// Per-RTT window rounds (the default; bit-identical to historic runs).
    #[default]
    Rounds,
    /// Event-driven fluid rates for large-swarm experiments.
    Fluid,
}

impl std::str::FromStr for FlowModel {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "rounds" => Ok(FlowModel::Rounds),
            "fluid" => Ok(FlowModel::Fluid),
            other => Err(format!("unknown flow model `{other}` (rounds | fluid)")),
        }
    }
}

/// Tunables of the TCP model.
///
/// The defaults follow modern TCP practice (MSS 1460, IW10 per RFC 6928).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Initial congestion window, in packets.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, in packets.
    pub initial_ssthresh: f64,
    /// RTT multiples consumed by connection establishment before the first
    /// data round (1.5 models the three-way handshake).
    pub handshake_rtts: f64,
    /// Multiplicative-decrease factor applied to the window on a lossy
    /// round (0.5 = classic Reno, 0.7 = CUBIC-like).
    pub loss_decrease_factor: f64,
    /// Congestion-avoidance growth per round is `1 + ca_growth_factor ×
    /// cwnd` packets: 0 gives Reno's additive increase, small positive
    /// values approximate CUBIC's faster reopening after a loss.
    pub ca_growth_factor: f64,
    /// Congestion window floor after a loss, in packets.
    pub min_cwnd: f64,
    /// Congestion window ceiling, in packets (receive-window stand-in).
    pub max_cwnd: f64,
    /// Fraction of a link's configured loss that applies even when the
    /// link is idle. Shaped links (like the paper's GENI RSpec links) drop
    /// mostly under load: the effective per-packet loss of a link is
    /// `loss × (floor + (1 − floor) × utilization)`.
    pub loss_utilization_floor: f64,
    /// Time constant of the link-utilization estimator, seconds.
    pub utilization_tau_secs: f64,
    /// Extra loss per unit of link *overload pressure* beyond the
    /// threshold. Pressure is `flows × min_cwnd × MSS / BDP`: when so many
    /// flows share a link that even their minimum windows approach the
    /// bandwidth-delay product, real TCP cannot back off any further and
    /// collapses into retransmission timeouts. This is what makes an
    /// oversized download pool counterproductive on a thin link (the
    /// paper's §VI-B).
    pub overload_loss_coeff: f64,
    /// Pressure level where the overload ramp starts (queues build before
    /// the hard limit).
    pub overload_pressure_threshold: f64,
    /// Ceiling on the overload-induced extra loss.
    pub overload_loss_max: f64,
    /// How bulk transfers are advanced (per-RTT rounds or fluid rates).
    #[serde(default)]
    pub flow_model: FlowModel,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            initial_cwnd: 10.0,
            initial_ssthresh: 64.0,
            handshake_rtts: 1.5,
            loss_decrease_factor: 0.7,
            ca_growth_factor: 0.05,
            min_cwnd: 2.0,
            max_cwnd: 512.0,
            loss_utilization_floor: 0.25,
            utilization_tau_secs: 1.0,
            overload_loss_coeff: 0.9,
            overload_pressure_threshold: 0.6,
            overload_loss_max: 0.85,
            flow_model: FlowModel::Rounds,
        }
    }
}

/// Dynamic state of one flow.
#[derive(Debug)]
pub(crate) struct Flow {
    pub id: FlowId,
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Directed links crossed, in order.
    pub path: Vec<DirLinkId>,
    /// Round-trip time of the path (2 × one-way latency).
    pub rtt: SimDuration,
    /// Per-packet loss probability along the path.
    pub loss: f64,
    /// Total payload bytes to move.
    pub total: u64,
    /// Bytes delivered so far.
    pub delivered: u64,
    /// Congestion window, in packets.
    pub cwnd: f64,
    /// Slow-start threshold, in packets.
    pub ssthresh: f64,
    /// Application tag echoed in completion events.
    pub tag: u64,
    /// When the transfer was requested.
    pub started: SimTime,
    /// Fluid-model bookkeeping (inert under the round model).
    pub fluid: FluidFlowState,
}

/// Per-flow state of the fluid model. Zero/default until the flow's
/// handshake completes and it joins the rate solver.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FluidFlowState {
    /// The flow has finished its handshake and participates in rate
    /// solving. Always false under the round model.
    pub active: bool,
    /// Goodput rate assigned by the last rebalance, bits/sec.
    pub rate_bps: f64,
    /// When `rate_bps` took effect (progress is integrated lazily from
    /// this instant).
    pub rate_since: SimTime,
    /// Precise bytes delivered (kept in f64 so repeated epoch folds do not
    /// accumulate rounding error); `Flow::delivered` is its floor.
    pub delivered: f64,
    /// Effective loss of the current epoch, used to account retransmission
    /// waste in the wire-byte counters.
    pub eff_loss: f64,
    /// Wire bytes already credited to the stats/link counters.
    pub wire_emitted: u64,
    /// Bumped whenever the assigned rate changes; a
    /// [`crate::event::Scheduled::FlowDone`] carrying an older epoch is
    /// stale and ignored.
    pub epoch: u32,
}

/// What a round of the flow produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundOutcome {
    /// More rounds needed.
    InProgress,
    /// All bytes have been delivered.
    Completed,
}

impl Flow {
    /// Advances one RTT round given this round's fair-share rate and the
    /// effective per-packet loss (base path loss scaled by utilization).
    /// Returns the outcome and the wire bytes put on the path this round.
    pub fn advance_round(
        &mut self,
        cfg: &TcpConfig,
        fair_share_bps: f64,
        effective_loss: f64,
        rng: &mut StdRng,
    ) -> (RoundOutcome, u64) {
        // Fair-share budget for one RTT, in packets (at least one: TCP
        // always keeps a packet in flight).
        let budget_bytes = fair_share_bps / 8.0 * self.rtt.as_secs_f64();
        // `as u64` truncates like `floor` for non-negative values without
        // the libm call (the default x86-64 target has no roundsd).
        let budget_pkts = ((budget_bytes / cfg.mss as f64) as u64).max(1);
        let window_pkts = (self.cwnd as u64).max(1);
        let remaining_pkts = (self.total - self.delivered).div_ceil(cfg.mss);
        let send = budget_pkts.min(window_pkts).min(remaining_pkts);

        let lost = binomial(rng, send, effective_loss);
        let arrived = send - lost;
        self.delivered = (self.delivered + arrived * cfg.mss).min(self.total);

        if lost > 0 {
            // One loss event per round: multiplicative decrease.
            self.ssthresh = (self.cwnd * cfg.loss_decrease_factor).max(cfg.min_cwnd);
            self.cwnd = self.ssthresh;
        } else if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd * 2.0).min(self.ssthresh).min(cfg.max_cwnd);
        } else {
            self.cwnd = (self.cwnd + 1.0 + cfg.ca_growth_factor * self.cwnd).min(cfg.max_cwnd);
        }

        let outcome = if self.delivered >= self.total {
            RoundOutcome::Completed
        } else {
            RoundOutcome::InProgress
        };
        (outcome, send * cfg.mss)
    }
}

/// Per-directed-link recent send-rate estimator: an exponentially decayed
/// impulse average, so steady sends of `r` bps read back as ≈ `r`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LinkUsage {
    rate_bps: f64,
    last_micros: u64,
}

impl LinkUsage {
    /// Overwrites the estimate with `rate_bps` observed at `now`. The
    /// caller decays the old rate via [`LinkUsage::rate_bps_at`] and adds
    /// its contribution; splitting the two lets a round reuse one decay
    /// computation for both the utilization read and this update.
    pub fn set_rate(&mut self, now: SimTime, rate_bps: f64) {
        self.rate_bps = rate_bps;
        self.last_micros = now.as_micros();
    }

    /// The decayed rate estimate at `now`, bits per second.
    pub fn rate_bps_at(&self, now: SimTime, tau_secs: f64) -> f64 {
        let dt = now.as_micros().saturating_sub(self.last_micros) as f64 / 1e6;
        self.rate_bps * (-dt / tau_secs).exp()
    }
}

/// One slab slot: a generation counter plus the flow occupying it (if any).
/// The generation is bumped on removal, so a stale [`FlowId`] can never
/// alias a newer flow that reuses the slot.
#[derive(Debug)]
struct Slot {
    gen: u32,
    flow: Option<Flow>,
}

/// Book-keeping for all active flows and per-directed-link load counts.
///
/// Flows live in a generational slab: a [`FlowId`] packs `generation << 32 |
/// slot`, so lookups are two array indexes instead of a hash, freed slots
/// are reused LIFO, and stale ids (from already-delivered round events) miss
/// on the generation check. A per-node index keeps the flows touching each
/// endpoint in insertion order, making [`FlowTable::flows_touching`] O(1)
/// instead of a scan-and-sort over every active flow.
#[derive(Debug, Default)]
pub(crate) struct FlowTable {
    slots: Vec<Slot>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
    active: usize,
    /// Number of active flows crossing each directed link.
    link_load: Vec<u32>,
    /// Flows touching each node (as src or dst), in insertion order.
    by_node: Vec<Vec<FlowId>>,
}

impl FlowTable {
    pub fn new(dir_link_count: usize) -> Self {
        FlowTable {
            slots: Vec::new(),
            free: Vec::new(),
            active: 0,
            link_load: vec![0; dir_link_count],
            by_node: Vec::new(),
        }
    }

    fn pack(slot: u32, gen: u32) -> FlowId {
        FlowId((gen as u64) << 32 | slot as u64)
    }

    fn slot_of(id: FlowId) -> usize {
        (id.0 & u32::MAX as u64) as usize
    }

    fn gen_of(id: FlowId) -> u32 {
        (id.0 >> 32) as u32
    }

    pub fn insert(&mut self, mut flow: Flow) -> FlowId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot { gen: 0, flow: None });
                (self.slots.len() - 1) as u32
            }
        };
        let id = Self::pack(slot, self.slots[slot as usize].gen);
        flow.id = id;
        for dir in &flow.path {
            self.link_load[dir.index()] += 1;
        }
        self.note_endpoint(flow.src, id);
        self.note_endpoint(flow.dst, id);
        self.slots[slot as usize].flow = Some(flow);
        self.active += 1;
        id
    }

    fn note_endpoint(&mut self, node: NodeId, id: FlowId) {
        let idx = node.index();
        if idx >= self.by_node.len() {
            self.by_node.resize_with(idx + 1, Vec::new);
        }
        self.by_node[idx].push(id);
    }

    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut Flow> {
        let slot = self.slots.get_mut(Self::slot_of(id))?;
        if slot.gen != Self::gen_of(id) {
            return None;
        }
        slot.flow.as_mut()
    }

    pub fn get(&self, id: FlowId) -> Option<&Flow> {
        let slot = self.slots.get(Self::slot_of(id))?;
        if slot.gen != Self::gen_of(id) {
            return None;
        }
        slot.flow.as_ref()
    }

    /// Removes a flow, releasing its link load and retiring the slot's
    /// generation. Returns the flow if it was still active.
    pub fn remove(&mut self, id: FlowId) -> Option<Flow> {
        let idx = Self::slot_of(id);
        let slot = self.slots.get_mut(idx)?;
        if slot.gen != Self::gen_of(id) {
            return None;
        }
        let flow = slot.flow.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx as u32);
        self.active -= 1;
        for dir in &flow.path {
            debug_assert!(self.link_load[dir.index()] > 0);
            self.link_load[dir.index()] -= 1;
        }
        self.by_node[flow.src.index()].retain(|&f| f != id);
        self.by_node[flow.dst.index()].retain(|&f| f != id);
        Some(flow)
    }

    /// Number of active flows crossing the given directed link.
    pub fn load(&self, dir: DirLinkId) -> u32 {
        self.link_load[dir.index()]
    }

    /// Collects the ids of all flows the fluid solver should rate (active
    /// flows past their handshake), in slot order — deterministic for a
    /// given event history. Clears and fills `out` to keep the rebalance
    /// path allocation-free.
    pub fn collect_fluid_active(&self, out: &mut Vec<FlowId>) {
        out.clear();
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Some(flow) = &slot.flow {
                if flow.fluid.active {
                    out.push(Self::pack(idx as u32, slot.gen));
                }
            }
        }
    }

    /// Ids of all flows that have `node` as an endpoint, in insertion order.
    pub fn flows_touching(&self, node: NodeId) -> &[FlowId] {
        self.by_node
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    pub fn active_count(&self) -> usize {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::LinkId;
    use rand::SeedableRng;

    fn test_flow(total: u64, loss: f64) -> Flow {
        Flow {
            id: FlowId(0),
            src: NodeId::from_index(0),
            dst: NodeId::from_index(1),
            path: vec![DirLinkId::new(LinkId(0), true)],
            rtt: SimDuration::from_millis(100),
            loss,
            total,
            delivered: 0,
            cwnd: 10.0,
            ssthresh: 64.0,
            tag: 0,
            started: SimTime::ZERO,
            fluid: FluidFlowState::default(),
        }
    }

    #[test]
    fn lossless_flow_completes_and_grows_window() {
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut flow = test_flow(1_000_000, 0.0);
        let mut rounds = 0;
        while flow.advance_round(&cfg, 1e9, flow.loss, &mut rng).0 == RoundOutcome::InProgress {
            rounds += 1;
            assert!(rounds < 100, "flow did not complete");
        }
        // Slow start doubles 10 → 64 (ssthresh), then additive increase; a
        // 1 MB transfer at these windows takes a handful of rounds.
        assert!(rounds <= 12, "took {rounds} rounds");
        assert_eq!(flow.delivered, flow.total);
    }

    #[test]
    fn budget_caps_window() {
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut flow = test_flow(10_000_000, 0.0);
        // 128 kB/s fair share, 100 ms RTT → 12.8 kB ≈ 8 packets per round.
        let (_, sent) = flow.advance_round(&cfg, 128_000.0 * 8.0, 0.0, &mut rng);
        assert_eq!(flow.delivered, 8 * cfg.mss);
        assert_eq!(sent, 8 * cfg.mss);
    }

    #[test]
    fn lossy_rounds_shrink_window() {
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut flow = test_flow(100_000_000, 0.9);
        for _ in 0..50 {
            flow.advance_round(&cfg, 1e9, 0.9, &mut rng);
        }
        assert!(flow.cwnd <= 4.0, "window stayed at {}", flow.cwnd);
        assert!(flow.cwnd >= cfg.min_cwnd);
    }

    #[test]
    fn loss_limited_throughput_tracks_mathis() {
        // At p=5%, RTT=100ms, Mathis predicts ≈ MSS/RTT · sqrt(3/2p) ≈ 80 kB/s.
        let cfg = TcpConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        let mut flow = test_flow(u64::MAX / 2, 0.05);
        let rounds = 5_000;
        for _ in 0..rounds {
            flow.advance_round(&cfg, 1e12, 0.05, &mut rng);
        }
        let secs = rounds as f64 * flow.rtt.as_secs_f64();
        let goodput = flow.delivered as f64 / secs;
        assert!(
            (40_000.0..160_000.0).contains(&goodput),
            "goodput {goodput} B/s out of the loss-limited regime"
        );
    }

    #[test]
    fn flow_table_tracks_load() {
        let mut table = FlowTable::new(4);
        let f1 = table.insert(test_flow(100, 0.0));
        let f2 = table.insert(test_flow(100, 0.0));
        let dir = DirLinkId::new(LinkId(0), true);
        assert_eq!(table.load(dir), 2);
        assert_eq!(table.active_count(), 2);
        table.remove(f1).unwrap();
        assert_eq!(table.load(dir), 1);
        assert!(table.remove(f1).is_none());
        table.remove(f2).unwrap();
        assert_eq!(table.load(dir), 0);
    }

    #[test]
    fn flow_ids_are_unique_and_monotonic() {
        let mut table = FlowTable::new(4);
        let a = table.insert(test_flow(1, 0.0));
        let b = table.insert(test_flow(1, 0.0));
        table.remove(a).unwrap();
        let c = table.insert(test_flow(1, 0.0));
        assert!(a.raw() < b.raw() && b.raw() < c.raw());
    }

    #[test]
    fn flows_touching_finds_endpoints() {
        let mut table = FlowTable::new(4);
        let f = table.insert(test_flow(1, 0.0));
        assert_eq!(table.flows_touching(NodeId::from_index(0)), vec![f]);
        assert_eq!(table.flows_touching(NodeId::from_index(1)), vec![f]);
        assert!(table.flows_touching(NodeId::from_index(2)).is_empty());
    }

    #[test]
    fn slab_never_reuses_ids_for_live_flows() {
        use std::collections::HashSet;
        let mut table = FlowTable::new(4);
        let mut live: HashSet<u64> = HashSet::new();
        let mut retired: HashSet<u64> = HashSet::new();
        let mut active: Vec<FlowId> = Vec::new();
        // Churn insertions and removals so slots recycle many times.
        for round in 0..64 {
            for _ in 0..3 {
                let id = table.insert(test_flow(1, 0.0));
                assert!(
                    !retired.contains(&id.raw()),
                    "retired id {id:?} was handed out again"
                );
                assert!(live.insert(id.raw()), "id {id:?} duplicates a live flow");
                active.push(id);
            }
            // Remove from the middle so the free list sees varied slots.
            let victim = active.remove(round % active.len());
            assert!(table.remove(victim).is_some());
            live.remove(&victim.raw());
            retired.insert(victim.raw());
        }
        assert_eq!(table.active_count(), active.len());
        for id in &retired {
            assert!(
                table.get(FlowId(*id)).is_none(),
                "stale id resolved to a flow"
            );
        }
        for id in &active {
            assert!(table.get(*id).is_some(), "live id failed to resolve");
        }
    }

    #[test]
    fn stale_id_misses_after_slot_reuse() {
        let mut table = FlowTable::new(4);
        let a = table.insert(test_flow(1, 0.0));
        table.remove(a).unwrap();
        // The replacement reuses slot 0 but carries a newer generation.
        let b = table.insert(test_flow(1, 0.0));
        assert_ne!(a.raw(), b.raw());
        assert!(
            table.get(a).is_none(),
            "stale id must not alias the new flow"
        );
        assert!(table.get_mut(a).is_none());
        assert!(table.remove(a).is_none());
        assert!(table.get(b).is_some());
        assert_eq!(table.active_count(), 1);
    }
}
