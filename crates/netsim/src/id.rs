//! Opaque identifiers used throughout the simulator.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a node (host) in the simulated network.
///
/// Node ids are dense indices assigned by [`crate::Network`] in creation
/// order, so they can be used to index per-node tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    ///
    /// Only valid when `index` was previously obtained from
    /// [`NodeId::index`] for the same network.
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies an undirected link between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The dense index of this link.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Identifies one direction of a link (the unit of capacity sharing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DirLinkId(pub(crate) u32);

impl DirLinkId {
    pub(crate) fn new(link: LinkId, forward: bool) -> Self {
        DirLinkId(link.0 * 2 + u32::from(!forward))
    }

    /// The `a -> b` direction of a link.
    pub fn new_forward(link: LinkId) -> Self {
        DirLinkId::new(link, true)
    }

    /// The `b -> a` direction of a link.
    pub fn new_backward(link: LinkId) -> Self {
        DirLinkId::new(link, false)
    }

    /// The undirected link this direction belongs to.
    pub fn link(self) -> LinkId {
        LinkId(self.0 / 2)
    }

    /// True when this is the `a -> b` direction of the link.
    pub fn is_forward(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The dense index of this directed link.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DirLinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.link(),
            if self.is_forward() { ">" } else { "<" }
        )
    }
}

/// Identifies a bulk TCP transfer (flow). Unique over a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub(crate) u64);

impl FlowId {
    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_link_round_trip() {
        let l = LinkId(7);
        let fwd = DirLinkId::new(l, true);
        let back = DirLinkId::new(l, false);
        assert_eq!(fwd.link(), l);
        assert_eq!(back.link(), l);
        assert!(fwd.is_forward());
        assert!(!back.is_forward());
        assert_ne!(fwd, back);
    }

    #[test]
    fn node_id_index_round_trip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn display_forms() {
        assert_eq!(LinkId(3).to_string(), "l3");
        assert_eq!(DirLinkId::new(LinkId(3), true).to_string(), "l3>");
        assert_eq!(FlowId(9).to_string(), "f9");
    }
}
