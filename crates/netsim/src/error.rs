//! Error types for the network simulator.

use std::error::Error;
use std::fmt;

use crate::id::NodeId;

/// Errors surfaced by networking operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A node id did not refer to a node in the network.
    UnknownNode,
    /// No path exists between the given nodes.
    NoRoute {
        /// Source of the attempted route.
        src: NodeId,
        /// Destination of the attempted route.
        dst: NodeId,
    },
    /// The target node is offline (e.g. has churned out of the swarm).
    NodeOffline(NodeId),
    /// A transfer of zero bytes was requested.
    EmptyTransfer,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode => write!(f, "unknown node id"),
            NetError::NoRoute { src, dst } => write!(f, "no route from {src} to {dst}"),
            NetError::NodeOffline(n) => write!(f, "node {n} is offline"),
            NetError::EmptyTransfer => write!(f, "transfer must carry at least one byte"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetError::NoRoute {
            src: NodeId::from_index(1),
            dst: NodeId::from_index(2),
        };
        assert_eq!(e.to_string(), "no route from n1 to n2");
        assert_eq!(NetError::UnknownNode.to_string(), "unknown node id");
        assert_eq!(
            NetError::EmptyTransfer.to_string(),
            "transfer must carry at least one byte"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
