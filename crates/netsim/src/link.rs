//! Links: the capacity, latency, and loss model of the simulated network.

use serde::{Deserialize, Serialize};

use crate::id::{DirLinkId, LinkId, NodeId};
use crate::time::SimDuration;

/// Static properties of one direction of a link.
///
/// # Examples
///
/// ```
/// use splicecast_netsim::{LinkSpec, SimDuration};
///
/// // A 128 kB/s access link with 25 ms one-way latency and ~2.5% loss.
/// let spec = LinkSpec::new(128_000.0 * 8.0, SimDuration::from_millis(25), 0.025);
/// assert_eq!(spec.capacity_bytes_per_sec(), 128_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Probability that any given packet crossing the link is lost.
    pub loss: f64,
}

impl LinkSpec {
    /// Creates a link spec.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bps` is not positive/finite or `loss` is outside
    /// `[0, 1)`.
    pub fn new(capacity_bps: f64, latency: SimDuration, loss: f64) -> Self {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be positive, got {capacity_bps}"
        );
        assert!(
            (0.0..1.0).contains(&loss),
            "loss must be in [0,1), got {loss}"
        );
        LinkSpec {
            capacity_bps,
            latency,
            loss,
        }
    }

    /// Convenience constructor taking capacity in bytes per second.
    pub fn from_bytes_per_sec(bytes_per_sec: f64, latency: SimDuration, loss: f64) -> Self {
        Self::new(bytes_per_sec * 8.0, latency, loss)
    }

    /// Capacity expressed in bytes per second.
    pub fn capacity_bytes_per_sec(&self) -> f64 {
        self.capacity_bps / 8.0
    }

    /// Time for `bytes` to be serialised onto the link at full capacity.
    pub fn transmission_delay(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.capacity_bps)
    }
}

/// A bidirectional link between two nodes, with independent per-direction
/// specs (capacity is *not* shared between directions, as on full-duplex
/// Ethernet).
#[derive(Debug, Clone)]
pub struct Link {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    /// Spec of the `a -> b` direction.
    pub(crate) forward: LinkSpec,
    /// Spec of the `b -> a` direction.
    pub(crate) backward: LinkSpec,
}

impl Link {
    /// The two endpoints, in `(a, b)` order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// Spec for the given direction.
    pub fn spec(&self, forward: bool) -> &LinkSpec {
        if forward {
            &self.forward
        } else {
            &self.backward
        }
    }

    pub(crate) fn spec_mut(&mut self, forward: bool) -> &mut LinkSpec {
        if forward {
            &mut self.forward
        } else {
            &mut self.backward
        }
    }

    /// The directed-link id for traffic leaving `from` over this link.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of the link.
    pub fn direction_from(&self, id: LinkId, from: NodeId) -> DirLinkId {
        if from == self.a {
            DirLinkId::new(id, true)
        } else if from == self.b {
            DirLinkId::new(id, false)
        } else {
            panic!("{from} is not an endpoint of {id}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_conversions() {
        let s = LinkSpec::from_bytes_per_sec(1_000.0, SimDuration::from_millis(10), 0.0);
        assert_eq!(s.capacity_bps, 8_000.0);
        assert_eq!(s.capacity_bytes_per_sec(), 1_000.0);
        assert_eq!(s.transmission_delay(500), SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LinkSpec::new(0.0, SimDuration::ZERO, 0.0);
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn full_loss_panics() {
        let _ = LinkSpec::new(1.0, SimDuration::ZERO, 1.0);
    }

    #[test]
    fn directions() {
        let link = Link {
            a: NodeId(0),
            b: NodeId(1),
            forward: LinkSpec::new(8.0, SimDuration::ZERO, 0.0),
            backward: LinkSpec::new(16.0, SimDuration::ZERO, 0.0),
        };
        let id = LinkId(0);
        assert!(link.direction_from(id, NodeId(0)).is_forward());
        assert!(!link.direction_from(id, NodeId(1)).is_forward());
        assert_eq!(link.spec(true).capacity_bps, 8.0);
        assert_eq!(link.spec(false).capacity_bps, 16.0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn direction_from_stranger_panics() {
        let link = Link {
            a: NodeId(0),
            b: NodeId(1),
            forward: LinkSpec::new(8.0, SimDuration::ZERO, 0.0),
            backward: LinkSpec::new(8.0, SimDuration::ZERO, 0.0),
        };
        let _ = link.direction_from(LinkId(0), NodeId(5));
    }
}
