//! Simulated-clock primitives.
//!
//! All simulation time is kept as an integer number of **microseconds** so
//! that event ordering is exact and runs are bit-for-bit reproducible; the
//! floating-point second representations are only conversions at the API
//! boundary.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated clock, in microseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use splicecast_netsim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use splicecast_netsim::SimDuration;
///
/// let d = SimDuration::from_millis(250) * 4;
/// assert_eq!(d, SimDuration::from_secs(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "end of time" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from fractional seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time: {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is expected.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_round_trips_through_seconds() {
        let t = SimTime::from_secs_f64(12.345678);
        assert_eq!(t.as_micros(), 12_345_678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(1_500);
        assert_eq!(d.as_secs_f64(), 1.5);
        assert_eq!(d * 2, SimDuration::from_secs(3));
        assert_eq!(d / 3, SimDuration::from_millis(500));
        assert_eq!(d - SimDuration::from_secs(2), SimDuration::ZERO);
    }

    #[test]
    fn time_plus_duration_orders() {
        let a = SimTime::from_micros(10);
        let b = a + SimDuration::from_micros(5);
        assert!(b > a);
        assert_eq!(b - a, SimDuration::from_micros(5));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(2));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
